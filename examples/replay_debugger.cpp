// Time-travel debugging with published messages (§6.5).
//
// "A programmer would like some way of backing up a process ... to the point
// where the problem originally occurred.  Published communications offers
// this as a side effect."
//
// This example runs a small computation, then — entirely offline, without
// touching the live system — uses the ReplayDebugger to reconstruct the
// server process at its last checkpoint and single-step it through its
// published message history, printing the state after every step and every
// message it would have sent.
//
//   $ ./replay_debugger

#include <cstdio>

#include "src/core/publishing_system.h"
#include "src/core/replay_debugger.h"
#include "tests/test_programs.h"

using namespace publishing;

int main() {
  // --- Phase 1: run a live system and capture history ---------------------
  PublishingSystemConfig config;
  config.cluster.node_count = 2;
  config.cluster.start_system_processes = false;
  PublishingSystem system(config);
  system.cluster().registry().Register("echo", [] { return std::make_unique<EchoProgram>(); });
  system.cluster().registry().Register("pinger",
                                       [] { return std::make_unique<PingerProgram>(12); });

  auto echo = system.cluster().Spawn(NodeId{2}, "echo");
  system.cluster().Spawn(NodeId{1}, "pinger", {Link{*echo, 1, 0, 0}});
  system.RunFor(Millis(12));
  system.cluster().kernel(NodeId{2})->CheckpointProcess(*echo);  // Mid-run checkpoint.
  system.RunFor(Seconds(30));

  // --- Phase 2: offline post-mortem from the published record -------------
  std::printf("=== post-mortem debugger for %s ===\n\n", ToString(*echo).c_str());

  auto info = system.storage().Info(*echo);
  std::printf("program image   : %s\n", info->program.c_str());
  std::printf("has checkpoint  : %s (subsumes %llu reads)\n",
              info->has_checkpoint ? "yes" : "no",
              static_cast<unsigned long long>(info->checkpoint_reads));

  ReplayDebugger debugger(&system.storage(), &system.cluster().registry(), *echo);
  if (!debugger.Initialize().ok()) {
    std::printf("cannot initialize debugger\n");
    return 1;
  }
  std::printf("published tail  : %zu messages\n\n", debugger.remaining());

  const auto* state = dynamic_cast<const EchoProgram*>(debugger.program());
  std::printf("state at checkpoint: echoed=%llu\n\n",
              static_cast<unsigned long long>(state->echoed()));

  while (!debugger.AtEnd()) {
    auto step = debugger.Step();
    if (!step.ok()) {
      std::printf("step failed: %s\n", step.status().ToString().c_str());
      return 1;
    }
    std::printf("  step %2llu: read %s from %s (%zu bytes, channel %u)\n",
                static_cast<unsigned long long>(debugger.steps_taken()),
                ToString(step->id).c_str(), ToString(step->from).c_str(), step->body_bytes,
                step->channel);
    for (const DebuggerSend& send : step->sends) {
      std::printf("      -> would send %zu bytes to %s (channel %u)\n", send.body_bytes,
                  ToString(send.dest).c_str(), send.channel);
    }
    std::printf("      state: echoed=%llu\n",
                static_cast<unsigned long long>(state->echoed()));
  }

  // Cross-check the reconstruction against the live process.
  const auto* live = dynamic_cast<const EchoProgram*>(
      system.cluster().kernel(NodeId{2})->ProgramFor(*echo));
  std::printf("\nreconstructed state: echoed=%llu | live process: echoed=%llu\n",
              static_cast<unsigned long long>(state->echoed()),
              static_cast<unsigned long long>(live->echoed()));
  const bool ok = state->echoed() == live->echoed() && debugger.steps_taken() > 0;
  std::printf("%s\n", ok ? "REPLAY_DEBUGGER OK (offline replay matches live state)"
                         : "REPLAY_DEBUGGER FAILED");
  return ok ? 0 : 1;
}
