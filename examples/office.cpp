// Automated office — the thesis' first motivating scenario (Chapter 1, the
// XEROX STAR configuration): personal workstations sharing an expensive
// print server over a LAN.
//
// Two workstations each submit 15 print jobs to a shared print server, which
// spools each job to a file server.  We crash the *entire node* hosting the
// print server mid-burst.  The watchdog detects the silent processor,
// power-cycles it, and publishing recovers the server — every job prints
// exactly once and every workstation gets every completion notice, with no
// application-level retry logic anywhere.
//
//   $ ./office

#include <cstdio>

#include "src/common/logging.h"
#include "src/core/publishing_system.h"

using namespace publishing;

namespace {

constexpr uint16_t kPrintChannel = 1;
constexpr uint16_t kDoneChannel = 2;
constexpr uint16_t kArchiveChannel = 3;
constexpr uint64_t kJobsPerStation = 15;

class PrintServerProgram : public UserProgram {
 public:
  static constexpr uint32_t kFileServerLink = 1;  // Initial link.

  void OnStart(KernelApi& api) override { (void)api; }

  void OnMessage(KernelApi& api, const DeliveredMessage& msg) override {
    if (msg.channel != kPrintChannel) {
      return;
    }
    Reader r(std::span<const uint8_t>(msg.body.data(), msg.body.size()));
    const uint64_t job = *r.ReadU64();
    const uint64_t pages = *r.ReadU64();
    api.Charge(Millis(5) * static_cast<SimDuration>(pages));  // Print it.
    ++jobs_printed_;
    pages_printed_ += pages;

    // Archive the job record on the file server.
    Writer archive;
    archive.WriteU64(job);
    archive.WriteU64(pages);
    api.Send(LinkId{kFileServerLink}, archive.TakeBytes());

    // Tell the workstation (reply link rode along with the job).
    if (msg.passed_link.IsValid()) {
      Writer done;
      done.WriteU64(job);
      api.Send(msg.passed_link, done.TakeBytes());
    }
  }

  void SaveState(Writer& w) const override {
    w.WriteU64(jobs_printed_);
    w.WriteU64(pages_printed_);
  }
  Status LoadState(Reader& r) override {
    jobs_printed_ = *r.ReadU64();
    pages_printed_ = *r.ReadU64();
    return Status::Ok();
  }

  uint64_t jobs_printed() const { return jobs_printed_; }

 private:
  uint64_t jobs_printed_ = 0;
  uint64_t pages_printed_ = 0;
};

class FileServerProgram : public UserProgram {
 public:
  void OnStart(KernelApi& api) override { (void)api; }

  void OnMessage(KernelApi& api, const DeliveredMessage& msg) override {
    (void)api;
    if (msg.channel != kArchiveChannel) {
      return;
    }
    Reader r(std::span<const uint8_t>(msg.body.data(), msg.body.size()));
    const uint64_t job = *r.ReadU64();
    ++archived_;
    archive_hash_ = archive_hash_ * 31 + job;
  }

  void SaveState(Writer& w) const override {
    w.WriteU64(archived_);
    w.WriteU64(archive_hash_);
  }
  Status LoadState(Reader& r) override {
    archived_ = *r.ReadU64();
    archive_hash_ = *r.ReadU64();
    return Status::Ok();
  }

  uint64_t archived() const { return archived_; }

 private:
  uint64_t archived_ = 0;
  uint64_t archive_hash_ = 1;
};

class WorkstationProgram : public UserProgram {
 public:
  static constexpr uint32_t kPrinterLink = 1;  // Initial link.

  explicit WorkstationProgram(uint64_t id) : id_(id) {}

  void OnStart(KernelApi& api) override { SubmitNext(api); }

  void OnMessage(KernelApi& api, const DeliveredMessage& msg) override {
    if (msg.channel != kDoneChannel) {
      return;
    }
    ++confirmed_;
    if (submitted_ < kJobsPerStation) {
      SubmitNext(api);
    }
  }

  void SaveState(Writer& w) const override {
    w.WriteU64(id_);
    w.WriteU64(submitted_);
    w.WriteU64(confirmed_);
  }
  Status LoadState(Reader& r) override {
    id_ = *r.ReadU64();
    submitted_ = *r.ReadU64();
    confirmed_ = *r.ReadU64();
    return Status::Ok();
  }

  uint64_t confirmed() const { return confirmed_; }

 private:
  void SubmitNext(KernelApi& api) {
    auto reply = api.CreateLink(kDoneChannel, 0);
    Writer w;
    w.WriteU64(id_ * 1000 + submitted_);          // Job id.
    w.WriteU64(1 + (submitted_ * 7 + id_) % 9);   // Page count.
    ++submitted_;
    api.Send(LinkId{kPrinterLink}, w.TakeBytes(), *reply);
  }

  uint64_t id_ = 0;
  uint64_t submitted_ = 0;
  uint64_t confirmed_ = 0;
};

}  // namespace

int main() {
  SetLogLevel(LogLevel::kInfo);

  PublishingSystemConfig config;
  config.cluster.node_count = 4;
  config.cluster.start_system_processes = false;
  PublishingSystem system(config);
  system.EnableCheckpointPolicy(std::make_unique<FixedIntervalPolicy>(Millis(400)));
  auto& registry = system.cluster().registry();
  registry.Register("file-server", [] { return std::make_unique<FileServerProgram>(); });
  registry.Register("print-server", [] { return std::make_unique<PrintServerProgram>(); });
  registry.Register("workstation-a", [] { return std::make_unique<WorkstationProgram>(1); });
  registry.Register("workstation-b", [] { return std::make_unique<WorkstationProgram>(2); });

  auto file_server = system.cluster().Spawn(NodeId{4}, "file-server");
  auto print_server = system.cluster().Spawn(
      NodeId{3}, "print-server", {Link{*file_server, kArchiveChannel, 0, 0}});
  auto station_a = system.cluster().Spawn(NodeId{1}, "workstation-a",
                                          {Link{*print_server, kPrintChannel, 0, 0}});
  auto station_b = system.cluster().Spawn(NodeId{2}, "workstation-b",
                                          {Link{*print_server, kPrintChannel, 0, 0}});

  std::printf("office: 2 workstations x %llu jobs -> print server (node 3) -> file server\n",
              static_cast<unsigned long long>(kJobsPerStation));

  system.RunFor(Millis(250));
  std::printf("\n--- pulling the plug on node 3 (the print server's whole processor) ---\n\n");
  system.CrashNode(NodeId{3});

  // No explicit recovery call: the watchdog notices the silence.
  system.RunFor(Seconds(600));

  const auto* a = dynamic_cast<const WorkstationProgram*>(
      system.cluster().kernel(NodeId{1})->ProgramFor(*station_a));
  const auto* b = dynamic_cast<const WorkstationProgram*>(
      system.cluster().kernel(NodeId{2})->ProgramFor(*station_b));
  const auto* printer = dynamic_cast<const PrintServerProgram*>(
      system.cluster().kernel(NodeId{3})->ProgramFor(*print_server));
  const auto* files = dynamic_cast<const FileServerProgram*>(
      system.cluster().kernel(NodeId{4})->ProgramFor(*file_server));

  std::printf("workstation A: %llu/%llu confirmations\n",
              static_cast<unsigned long long>(a->confirmed()),
              static_cast<unsigned long long>(kJobsPerStation));
  std::printf("workstation B: %llu/%llu confirmations\n",
              static_cast<unsigned long long>(b->confirmed()),
              static_cast<unsigned long long>(kJobsPerStation));
  std::printf("print server : %llu jobs printed (exactly once each)\n",
              static_cast<unsigned long long>(printer ? printer->jobs_printed() : 0));
  std::printf("file server  : %llu jobs archived\n",
              static_cast<unsigned long long>(files->archived()));
  std::printf("watchdog     : %llu node crash(es) detected\n",
              static_cast<unsigned long long>(system.recovery().stats().node_crashes_detected));

  const bool ok = a->confirmed() == kJobsPerStation && b->confirmed() == kJobsPerStation &&
                  printer != nullptr && printer->jobs_printed() == 2 * kJobsPerStation &&
                  files->archived() == 2 * kJobsPerStation;
  std::printf("%s\n", ok ? "OFFICE OK" : "OFFICE FAILED");
  return ok ? 0 : 1;
}
