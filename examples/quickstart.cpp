// Quickstart: the smallest complete publishing system.
//
// Builds a 2-node cluster with a recorder, runs a ping-pong pair, crashes
// the server mid-conversation, and shows the transparent recovery: the
// client never learns anything happened, and the server's state after
// recovery equals what it would have been without the crash.
//
//   $ ./quickstart

#include <cstdio>

#include "src/common/logging.h"
#include "src/core/publishing_system.h"
#include "tests/test_programs.h"

using namespace publishing;

int main() {
  SetLogLevel(LogLevel::kInfo);

  // 1. Configure a 2-node system.  Node 0 is the recorder; nodes 1..2 run
  //    DEMOS/MP kernels on an Acknowledging Ethernet.
  PublishingSystemConfig config;
  config.cluster.node_count = 2;
  config.cluster.start_system_processes = false;  // Keep the example minimal.
  PublishingSystem system(config);

  // 2. Register deterministic programs ("binary images").  Every node must
  //    know them so a crashed process can be recreated anywhere.
  system.cluster().registry().Register("echo", [] { return std::make_unique<EchoProgram>(); });
  system.cluster().registry().Register("pinger",
                                       [] { return std::make_unique<PingerProgram>(50); });

  // 3. Checkpoint every half second of virtual time (optional — recovery
  //    also works from the initial image, it just replays more).
  system.EnableCheckpointPolicy(std::make_unique<FixedIntervalPolicy>(Millis(500)));

  // 4. Spawn an echo server on node 2 and a client on node 1 holding a link
  //    to it.
  auto echo = system.cluster().Spawn(NodeId{2}, "echo");
  auto pinger = system.cluster().Spawn(NodeId{1}, "pinger",
                                       {Link{*echo, /*channel=*/1, /*code=*/0, 0}});

  // 5. Let the conversation get going, then kill the server.
  system.RunFor(Millis(150));
  std::printf("\n--- crashing the echo server %s ---\n\n", ToString(*echo).c_str());
  system.CrashProcess(*echo);

  // 6. The recovery manager restores it from the last checkpoint and replays
  //    its published messages; we just keep the clock running.
  if (!system.RunUntilRecovered(*echo, Seconds(60))) {
    std::printf("recovery did not complete\n");
    return 1;
  }
  system.RunFor(Seconds(60));

  // 7. Check the outcome.
  const auto* client = dynamic_cast<const PingerProgram*>(
      system.cluster().kernel(NodeId{1})->ProgramFor(*pinger));
  const auto* server = dynamic_cast<const EchoProgram*>(
      system.cluster().kernel(NodeId{2})->ProgramFor(*echo));
  std::printf("\nclient: %llu pings sent, %llu pongs received\n",
              static_cast<unsigned long long>(client->sent()),
              static_cast<unsigned long long>(client->received()));
  std::printf("server: %llu pings echoed (exactly once each)\n",
              static_cast<unsigned long long>(server->echoed()));
  std::printf("recorder: %llu messages published, %llu checkpoints stored\n",
              static_cast<unsigned long long>(system.recorder().stats().messages_published),
              static_cast<unsigned long long>(system.recorder().stats().checkpoints_stored));

  const bool ok = client->received() == 50 && server->echoed() == 50;
  std::printf("%s\n", ok ? "QUICKSTART OK" : "QUICKSTART FAILED");
  return ok ? 0 : 1;
}
