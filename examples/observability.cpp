// Observability: watch a crash and recovery unfold on the virtual clock.
//
// Runs a durable (WAL-backed) publishing system with the full observability
// subsystem attached: every layer — simulator, medium, transport, recorder,
// storage, recovery manager — feeds one MetricsRegistry and one Tracer.
// A worker process is crashed mid-workload; the recovery manager recreates
// it from its checkpoint and replays the log.  The run then dumps
//
//   observability_trace.json    — Chrome trace_event timeline; open it in
//                                 chrome://tracing or https://ui.perfetto.dev
//                                 to see net.transmit spans, transport.rtt
//                                 round trips, recorder.publish costs,
//                                 storage.group_commit windows, and the
//                                 crash → replay → caught-up recovery arc,
//   observability_metrics.json  — the aggregate counters/gauges/histograms,
//   observability_lifecycle.json — the causal per-message lifecycle table
//                                 (sent -> on-wire -> overheard -> published
//                                 -> durable -> delivered -> read, with
//                                 virtual-time latency per stage),
//   observability_flight.json   — the crash flight recorder's dump, taken at
//                                 the injection instant,
//
// and exits nonzero unless the trace actually contains events from all four
// instrumented data-path layers plus the complete recovery timeline, the
// invariant oracle saw zero violations, and at least one message's complete
// lifecycle was captured.
//
//   $ ./observability

#include <cstdio>
#include <filesystem>
#include <string>

#include "src/common/logging.h"
#include "src/core/publishing_system.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/lifecycle.h"
#include "src/obs/observability.h"
#include "src/obs/oracle.h"
#include "src/storage/wal.h"
#include "tests/test_programs.h"

using namespace publishing;

namespace {
namespace fs = std::filesystem;

bool Require(bool ok, const char* what) {
  if (!ok) {
    std::fprintf(stderr, "FAIL: %s\n", what);
  }
  return ok;
}
}  // namespace

int main() {
  SetLogLevel(LogLevel::kInfo);
  const fs::path dir = fs::temp_directory_path() / "pub_example_observability";
  fs::remove_all(dir);

  WalOptions wal_options;
  wal_options.dir = dir.string();
  wal_options.group_commit_records = 8;
  auto wal = Wal::Open(wal_options);
  if (!wal.ok()) {
    std::fprintf(stderr, "wal open failed: %s\n", wal.status().message().c_str());
    return 1;
  }

  PublishingSystemConfig config;
  config.cluster.node_count = 2;
  config.cluster.start_system_processes = false;
  config.storage_backend = wal->get();
  PublishingSystem system(config);

  // Attach the observability subsystem.  One registry + one tracer observe
  // every layer; the lifecycle tracker adds the causal per-message view and
  // fans out to the invariant oracle and the crash flight recorder.
  // Detaching (or never attaching) leaves runs bit-identical.
  MetricsRegistry registry;
  Tracer tracer(&system.sim());
  InvariantOracle oracle;
  FlightRecorder flight;
  LifecycleTracker lifecycle(&system.sim());
  lifecycle.AttachTracer(&tracer);
  lifecycle.AttachMetrics(&registry);
  lifecycle.AttachOracle(&oracle);
  lifecycle.AttachFlightRecorder(&flight);
  oracle.AttachFlightRecorder(&flight);
  oracle.AttachMetrics(&registry);
  Observability obs;
  obs.metrics = &registry;
  obs.tracer = &tracer;
  obs.lifecycle = &lifecycle;
  system.EnableObservability(obs);

  system.cluster().registry().Register("echo",
                                       [] { return std::make_unique<EchoProgram>(); });
  system.cluster().registry().Register("pinger",
                                       [] { return std::make_unique<PingerProgram>(60); });
  auto echo = system.cluster().Spawn(NodeId{2}, "echo");
  auto pinger = system.cluster().Spawn(NodeId{1}, "pinger", {Link{*echo, 1, 0, 0}});
  if (!echo.ok() || !pinger.ok()) {
    std::fprintf(stderr, "spawn failed\n");
    return 1;
  }

  // Let traffic flow, checkpoint the worker, then kill it.
  system.RunFor(Seconds(2));
  (void)system.cluster().kernel(NodeId{2})->CheckpointProcess(*echo);
  system.RunFor(Seconds(1));

  PUB_LOG_INFO("observability: crashing %s", ToString(*echo).c_str());
  if (!system.CrashProcess(*echo).ok()) {
    std::fprintf(stderr, "crash injection failed\n");
    return 1;
  }
  if (!system.RunUntilRecovered(*echo, Seconds(30))) {
    std::fprintf(stderr, "recovery did not complete\n");
    return 1;
  }
  system.RunFor(Seconds(2));

  oracle.CheckQuiescent();

  // Dump the artifacts.  The flight dump was taken at the crash instant; we
  // re-serialize it here for the file artifact.
  if (!tracer.WriteChromeJsonFile("observability_trace.json") ||
      !registry.WriteJsonFile("observability_metrics.json") ||
      !lifecycle.WriteJsonFile("observability_lifecycle.json") ||
      !WriteTextFile("observability_flight.json", flight.last_dump())) {
    std::fprintf(stderr, "cannot write observability artifacts\n");
    return 1;
  }
  std::printf("wrote observability_trace.json (%zu events, %llu dropped)\n", tracer.size(),
              static_cast<unsigned long long>(tracer.dropped()));
  std::printf("wrote observability_metrics.json (%zu instruments)\n", registry.size());
  std::printf("wrote observability_lifecycle.json (%zu messages tracked)\n",
              lifecycle.size());
  std::printf("wrote observability_flight.json (dump %llu, reason: crash_process)\n",
              static_cast<unsigned long long>(flight.dump_count()));
  std::printf("published %llu messages, recovery took the timeline below:\n",
              static_cast<unsigned long long>(
                  registry.GetCounter("recorder.messages_published")->value()));
  std::printf("  crash notice -> recovery.process span -> checkpoint load ->\n");
  std::printf("  recovery.replay span -> recovery.caught_up\n");

  // Self-check: the trace must carry all four data-path layers plus the
  // complete recovery arc, and the metrics must agree a recovery happened.
  bool ok = true;
  ok &= Require(tracer.Contains("net.transmit"), "trace has net layer spans");
  ok &= Require(tracer.Contains("transport.rtt"), "trace has transport layer spans");
  ok &= Require(tracer.Contains("recorder.publish"), "trace has recorder layer spans");
  ok &= Require(tracer.Contains("storage.group_commit"), "trace has storage layer spans");
  ok &= Require(tracer.Contains("recovery.crash_notice"), "trace has the crash notice");
  ok &= Require(tracer.Contains("recovery.checkpoint_loaded"), "trace has checkpoint load");
  ok &= Require(tracer.Contains("recovery.process"), "trace has the recovery span");
  ok &= Require(tracer.Contains("recovery.replay"), "trace has the replay span");
  ok &= Require(tracer.Contains("recovery.caught_up"), "trace has caught-up");
  ok &= Require(registry.GetCounter("recovery.completed")->value() == 1,
                "metrics count one completed recovery");
  ok &= Require(registry.GetCounter("storage.syncs")->value() > 0,
                "metrics saw WAL fsyncs");
  ok &= Require(oracle.total_violations() == 0, "invariant oracle is clean");
  ok &= Require(flight.dump_count() >= 1, "crash dumped the flight recorder");
  ok &= Require(tracer.Contains("msg.lifecycle"), "trace has per-message spans");
  bool full_chain = false;
  for (const auto& [id, rec] : lifecycle.table()) {
    full_chain = full_chain ||
                 (rec.Saw(LifecycleStage::kSent) && rec.Saw(LifecycleStage::kOnWire) &&
                  rec.Saw(LifecycleStage::kOverheard) &&
                  rec.Saw(LifecycleStage::kPublished) &&
                  rec.Saw(LifecycleStage::kDurable) &&
                  rec.Saw(LifecycleStage::kDelivered) && rec.Saw(LifecycleStage::kRead));
  }
  ok &= Require(full_chain, "a complete message lifecycle was captured");

  fs::remove_all(dir);
  if (!ok) {
    return 1;
  }
  std::printf("OK\n");
  return 0;
}
