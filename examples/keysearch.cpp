// Distributed key search — the thesis' motivating workload (Chapter 1):
// "Diffie and Hellman have shown how to break the NBS/DES standard using a
// network of one million computers.  A controlling computer partitions the
// search space ... the computers then exhaustively search their partitions."
// With a 6-minute MTBF across such a fleet, the day-long search needs
// transparent recovery.
//
// Here a controller partitions a key space across worker processes spread
// over the cluster.  We crash every worker (and one of them twice) while the
// search runs; publishing recovers each one transparently and the search
// still finds the key — and every chunk is searched exactly once.
//
//   $ ./keysearch

#include <cstdio>
#include <vector>

#include "src/common/logging.h"
#include "src/core/publishing_system.h"

using namespace publishing;

namespace {

constexpr uint64_t kKeySpace = 100000;
constexpr uint64_t kChunk = 2500;
constexpr uint64_t kChunks = kKeySpace / kChunk;
constexpr uint64_t kSecretKey = 73911;
constexpr uint16_t kControlChannel = 1;
constexpr uint16_t kWorkChannel = 2;

enum WorkerOp : uint8_t { kRequestWork = 1, kReportResult = 2 };

class ControllerProgram : public UserProgram {
 public:
  void OnStart(KernelApi& api) override { (void)api; }

  void OnMessage(KernelApi& api, const DeliveredMessage& msg) override {
    if (msg.channel != kControlChannel || msg.body.empty()) {
      return;
    }
    Reader r(std::span<const uint8_t>(msg.body.data(), msg.body.size()));
    const uint8_t op = *r.ReadU8();
    if (op == kReportResult) {
      const uint64_t chunk = *r.ReadU64();
      const bool found = *r.ReadBool();
      const uint64_t key = *r.ReadU64();
      if (chunk < kChunks) {
        ++completions_[chunk];
      }
      ++chunks_done_;
      if (found) {
        found_key_ = key;
        ++times_found_;
      }
    }
    if (op == kRequestWork || op == kReportResult) {
      if (!msg.passed_link.IsValid()) {
        return;
      }
      Writer w;
      if (next_chunk_ < kChunks && times_found_ == 0) {
        w.WriteU64(next_chunk_);
        w.WriteU64(next_chunk_ * kChunk);
        w.WriteU64((next_chunk_ + 1) * kChunk);
        w.WriteBool(false);  // Not done.
        ++next_chunk_;
      } else {
        w.WriteU64(0);
        w.WriteU64(0);
        w.WriteU64(0);
        w.WriteBool(true);  // Done: stop asking.
      }
      api.Send(msg.passed_link, w.TakeBytes());
    }
  }

  void SaveState(Writer& w) const override {
    w.WriteU64(next_chunk_);
    w.WriteU64(chunks_done_);
    w.WriteU64(found_key_);
    w.WriteU64(times_found_);
    w.WriteU32(kChunks);
    for (uint64_t c : completions_) {
      w.WriteU64(c);
    }
  }

  Status LoadState(Reader& r) override {
    next_chunk_ = *r.ReadU64();
    chunks_done_ = *r.ReadU64();
    found_key_ = *r.ReadU64();
    times_found_ = *r.ReadU64();
    const uint32_t n = *r.ReadU32();
    for (uint32_t i = 0; i < n && i < kChunks; ++i) {
      completions_[i] = *r.ReadU64();
    }
    return Status::Ok();
  }

  uint64_t found_key() const { return found_key_; }
  uint64_t times_found() const { return times_found_; }
  uint64_t chunks_done() const { return chunks_done_; }
  bool EveryChunkExactlyOnce() const {
    for (uint64_t i = 0; i < kChunks; ++i) {
      // Chunks after the key was found may legitimately be unassigned.
      if (completions_[i] > 1) {
        return false;
      }
    }
    return true;
  }

 private:
  uint64_t next_chunk_ = 0;
  uint64_t chunks_done_ = 0;
  uint64_t found_key_ = 0;
  uint64_t times_found_ = 0;
  uint64_t completions_[kChunks] = {};
};

class WorkerProgram : public UserProgram {
 public:
  static constexpr uint32_t kControllerLink = 1;  // Initial link.

  void OnStart(KernelApi& api) override { AskForWork(api); }

  void OnMessage(KernelApi& api, const DeliveredMessage& msg) override {
    if (msg.channel != kWorkChannel) {
      return;
    }
    Reader r(std::span<const uint8_t>(msg.body.data(), msg.body.size()));
    const uint64_t chunk = *r.ReadU64();
    const uint64_t lo = *r.ReadU64();
    const uint64_t hi = *r.ReadU64();
    const bool done = *r.ReadBool();
    if (done) {
      return;  // Idle; the search is over.
    }
    // "Exhaustively search" the partition: each key costs CPU.
    api.Charge(Micros(2) * static_cast<SimDuration>(hi - lo));
    const bool found = lo <= kSecretKey && kSecretKey < hi;
    ++searched_;

    auto reply = api.CreateLink(kWorkChannel, 0);
    Writer w;
    w.WriteU8(kReportResult);
    w.WriteU64(chunk);
    w.WriteBool(found);
    w.WriteU64(found ? kSecretKey : 0);
    api.Send(LinkId{kControllerLink}, w.TakeBytes(), *reply);
  }

  void SaveState(Writer& w) const override { w.WriteU64(searched_); }
  Status LoadState(Reader& r) override {
    searched_ = *r.ReadU64();
    return Status::Ok();
  }

  uint64_t searched() const { return searched_; }

 private:
  void AskForWork(KernelApi& api) {
    auto reply = api.CreateLink(kWorkChannel, 0);
    Writer w;
    w.WriteU8(kRequestWork);
    api.Send(LinkId{kControllerLink}, w.TakeBytes(), *reply);
  }

  uint64_t searched_ = 0;
};

}  // namespace

int main() {
  SetLogLevel(LogLevel::kInfo);

  PublishingSystemConfig config;
  config.cluster.node_count = 4;
  config.cluster.start_system_processes = false;
  PublishingSystem system(config);
  system.cluster().registry().Register("controller",
                                       [] { return std::make_unique<ControllerProgram>(); });
  system.cluster().registry().Register("worker",
                                       [] { return std::make_unique<WorkerProgram>(); });
  system.EnableCheckpointPolicy(std::make_unique<StorageBalancedPolicy>());

  auto controller = system.cluster().Spawn(NodeId{1}, "controller");
  std::vector<ProcessId> workers;
  for (uint32_t n = 2; n <= 4; ++n) {
    auto worker = system.cluster().Spawn(
        NodeId{n}, "worker", {Link{*controller, kControlChannel, /*code=*/n, 0}});
    workers.push_back(*worker);
  }

  std::printf("searching %llu keys in %llu chunks across %zu workers...\n",
              static_cast<unsigned long long>(kKeySpace),
              static_cast<unsigned long long>(kChunks), workers.size());

  // Crash every worker at staggered points; crash worker 0 twice.
  system.RunFor(Millis(300));
  std::printf("\n--- crashing worker on node 2 ---\n");
  system.CrashProcess(workers[0]);
  system.RunFor(Millis(400));
  std::printf("--- crashing worker on node 3 ---\n");
  system.CrashProcess(workers[1]);
  system.RunFor(Millis(400));
  std::printf("--- crashing worker on node 2 again, and node 4 ---\n");
  system.CrashProcess(workers[0]);
  system.CrashProcess(workers[2]);

  system.RunFor(Seconds(300));

  const auto* c = dynamic_cast<const ControllerProgram*>(
      system.cluster().kernel(NodeId{1})->ProgramFor(*controller));
  std::printf("\nkey found: %llu (expected %llu), found %llu time(s)\n",
              static_cast<unsigned long long>(c->found_key()),
              static_cast<unsigned long long>(kSecretKey),
              static_cast<unsigned long long>(c->times_found()));
  std::printf("chunks completed: %llu, duplicates: %s\n",
              static_cast<unsigned long long>(c->chunks_done()),
              c->EveryChunkExactlyOnce() ? "none" : "DUPLICATED WORK!");
  std::printf("recoveries completed: %llu\n",
              static_cast<unsigned long long>(
                  system.recovery().stats().process_recoveries_completed));

  const bool ok = c->found_key() == kSecretKey && c->times_found() == 1 &&
                  c->EveryChunkExactlyOnce() &&
                  system.recovery().stats().process_recoveries_completed >= 4;
  std::printf("%s\n", ok ? "KEYSEARCH OK" : "KEYSEARCH FAILED");
  return ok ? 0 : 1;
}
