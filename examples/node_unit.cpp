// Node-unit recovery (§6.6.2): "recovering nodes rather than processes".
//
// A node runs a chatty two-stage local pipeline (parser -> renderer) fed by
// a remote client.  In normal publishing mode every parser->renderer hop
// would cross the network just to be recorded; in node-unit mode those hops
// stay local — the kernel instead runs a deterministic scheduler, stamps
// each *extranode* arrival with its event-counter position, and checkpoints
// the node as a unit.  We kill the whole node mid-run and watch it rebuilt
// from the node image plus a step-synchronized replay.
//
//   $ ./node_unit

#include <cstdio>

#include "src/common/logging.h"
#include "src/core/publishing_system.h"
#include "tests/test_programs.h"

using namespace publishing;

namespace {

// Stage 1: "parses" each request (CPU) and forwards it intranode to the
// renderer, passing the client's reply link along.
class ParserProgram : public UserProgram {
 public:
  void OnStart(KernelApi& api) override { (void)api; }
  void OnMessage(KernelApi& api, const DeliveredMessage& msg) override {
    api.Charge(Micros(300));
    ++parsed_;
    api.Send(LinkId{1}, msg.body, msg.passed_link);  // Link 1: the renderer.
  }
  void SaveState(Writer& w) const override { w.WriteU64(parsed_); }
  Status LoadState(Reader& r) override {
    parsed_ = *r.ReadU64();
    return Status::Ok();
  }
  uint64_t parsed() const { return parsed_; }

 private:
  uint64_t parsed_ = 0;
};

}  // namespace

int main() {
  SetLogLevel(LogLevel::kInfo);

  PublishingSystemConfig config;
  config.cluster.node_count = 2;
  config.cluster.start_system_processes = false;
  config.node_unit_mode = true;  // §6.6.2 switch: everything else is as usual.
  PublishingSystem system(config);

  auto& registry = system.cluster().registry();
  registry.Register("renderer", [] { return std::make_unique<EchoProgram>(); });
  registry.Register("parser", [] { return std::make_unique<ParserProgram>(); });
  registry.Register("client", [] { return std::make_unique<PingerProgram>(50); });

  auto renderer = system.cluster().Spawn(NodeId{2}, "renderer");
  auto parser = system.cluster().Spawn(NodeId{2}, "parser",
                                       {Link{*renderer, /*channel=*/3, 0, 0}});
  auto client = system.cluster().Spawn(NodeId{1}, "client", {Link{*parser, 1, 0, 0}});

  // Whole-node checkpoints every 100 ms of virtual time.
  system.EnableNodeCheckpointInterval(Millis(100));

  system.RunFor(Millis(250));
  const auto* c = dynamic_cast<const PingerProgram*>(
      system.cluster().kernel(NodeId{1})->ProgramFor(*client));
  std::printf("mid-run: client has %llu/50 replies; wire carried %llu published messages\n",
              static_cast<unsigned long long>(c->received()),
              static_cast<unsigned long long>(system.recorder().stats().messages_published));

  std::printf("\n--- killing node 2 (parser + renderer + their queues) ---\n\n");
  system.CrashNode(NodeId{2});
  system.RunFor(Seconds(600));

  const auto* p = dynamic_cast<const ParserProgram*>(
      system.cluster().kernel(NodeId{2})->ProgramFor(*parser));
  const auto* r = dynamic_cast<const EchoProgram*>(
      system.cluster().kernel(NodeId{2})->ProgramFor(*renderer));

  std::printf("client   : %llu/50 replies\n", static_cast<unsigned long long>(c->received()));
  std::printf("parser   : %llu requests parsed (exactly once each)\n",
              static_cast<unsigned long long>(p ? p->parsed() : 0));
  std::printf("renderer : %llu requests rendered\n",
              static_cast<unsigned long long>(r ? r->echoed() : 0));
  std::printf("published: %llu messages total — intranode hops never hit the wire\n",
              static_cast<unsigned long long>(system.recorder().stats().messages_published));

  // 100 extranode messages (50 pings + 50 replies) plus a few retransmitted
  // frames from the node-down window; the ~150 intranode hops never appear.
  const bool ok = c->received() == 50 && p != nullptr && p->parsed() == 50 && r != nullptr &&
                  r->echoed() == 50 &&
                  system.recorder().stats().messages_published < 150;
  std::printf("%s\n", ok ? "NODE_UNIT OK" : "NODE_UNIT FAILED");
  return ok ? 0 : 1;
}
