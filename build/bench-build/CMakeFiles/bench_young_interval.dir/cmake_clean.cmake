file(REMOVE_RECURSE
  "../bench/bench_young_interval"
  "../bench/bench_young_interval.pdb"
  "CMakeFiles/bench_young_interval.dir/bench_young_interval.cc.o"
  "CMakeFiles/bench_young_interval.dir/bench_young_interval.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_young_interval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
