# Empty dependencies file for bench_young_interval.
# This may be replaced when dependencies are built.
