file(REMOVE_RECURSE
  "../bench/bench_fig5_5_utilization"
  "../bench/bench_fig5_5_utilization.pdb"
  "CMakeFiles/bench_fig5_5_utilization.dir/bench_fig5_5_utilization.cc.o"
  "CMakeFiles/bench_fig5_5_utilization.dir/bench_fig5_5_utilization.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_5_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
