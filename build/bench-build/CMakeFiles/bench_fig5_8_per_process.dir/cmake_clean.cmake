file(REMOVE_RECURSE
  "../bench/bench_fig5_8_per_process"
  "../bench/bench_fig5_8_per_process.pdb"
  "CMakeFiles/bench_fig5_8_per_process.dir/bench_fig5_8_per_process.cc.o"
  "CMakeFiles/bench_fig5_8_per_process.dir/bench_fig5_8_per_process.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_8_per_process.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
