# Empty dependencies file for bench_fig5_8_per_process.
# This may be replaced when dependencies are built.
