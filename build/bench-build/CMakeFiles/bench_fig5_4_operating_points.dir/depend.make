# Empty dependencies file for bench_fig5_4_operating_points.
# This may be replaced when dependencies are built.
