file(REMOVE_RECURSE
  "../bench/bench_fig5_4_operating_points"
  "../bench/bench_fig5_4_operating_points.pdb"
  "CMakeFiles/bench_fig5_4_operating_points.dir/bench_fig5_4_operating_points.cc.o"
  "CMakeFiles/bench_fig5_4_operating_points.dir/bench_fig5_4_operating_points.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_4_operating_points.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
