# Empty compiler generated dependencies file for bench_fig6_ether_ack.
# This may be replaced when dependencies are built.
