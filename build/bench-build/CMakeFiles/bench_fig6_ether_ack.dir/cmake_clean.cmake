file(REMOVE_RECURSE
  "../bench/bench_fig6_ether_ack"
  "../bench/bench_fig6_ether_ack.pdb"
  "CMakeFiles/bench_fig6_ether_ack.dir/bench_fig6_ether_ack.cc.o"
  "CMakeFiles/bench_fig6_ether_ack.dir/bench_fig6_ether_ack.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_ether_ack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
