# Empty compiler generated dependencies file for bench_recovery_time_model.
# This may be replaced when dependencies are built.
