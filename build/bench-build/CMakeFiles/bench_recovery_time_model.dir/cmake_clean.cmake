file(REMOVE_RECURSE
  "../bench/bench_recovery_time_model"
  "../bench/bench_recovery_time_model.pdb"
  "CMakeFiles/bench_recovery_time_model.dir/bench_recovery_time_model.cc.o"
  "CMakeFiles/bench_recovery_time_model.dir/bench_recovery_time_model.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_recovery_time_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
