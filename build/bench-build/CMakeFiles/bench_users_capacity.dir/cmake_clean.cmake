file(REMOVE_RECURSE
  "../bench/bench_users_capacity"
  "../bench/bench_users_capacity.pdb"
  "CMakeFiles/bench_users_capacity.dir/bench_users_capacity.cc.o"
  "CMakeFiles/bench_users_capacity.dir/bench_users_capacity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_users_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
