# Empty dependencies file for bench_users_capacity.
# This may be replaced when dependencies are built.
