# Empty dependencies file for bench_sec5_2_2_publish_time.
# This may be replaced when dependencies are built.
