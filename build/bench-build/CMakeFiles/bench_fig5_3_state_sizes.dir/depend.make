# Empty dependencies file for bench_fig5_3_state_sizes.
# This may be replaced when dependencies are built.
