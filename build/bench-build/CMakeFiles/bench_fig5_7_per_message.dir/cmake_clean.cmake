file(REMOVE_RECURSE
  "../bench/bench_fig5_7_per_message"
  "../bench/bench_fig5_7_per_message.pdb"
  "CMakeFiles/bench_fig5_7_per_message.dir/bench_fig5_7_per_message.cc.o"
  "CMakeFiles/bench_fig5_7_per_message.dir/bench_fig5_7_per_message.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_7_per_message.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
