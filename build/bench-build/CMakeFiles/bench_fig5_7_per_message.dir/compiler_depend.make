# Empty compiler generated dependencies file for bench_fig5_7_per_message.
# This may be replaced when dependencies are built.
