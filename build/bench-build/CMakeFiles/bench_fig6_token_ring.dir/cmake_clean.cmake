file(REMOVE_RECURSE
  "../bench/bench_fig6_token_ring"
  "../bench/bench_fig6_token_ring.pdb"
  "CMakeFiles/bench_fig6_token_ring.dir/bench_fig6_token_ring.cc.o"
  "CMakeFiles/bench_fig6_token_ring.dir/bench_fig6_token_ring.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_token_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
