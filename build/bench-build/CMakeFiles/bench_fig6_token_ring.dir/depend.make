# Empty dependencies file for bench_fig6_token_ring.
# This may be replaced when dependencies are built.
