# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_keysearch "/root/repo/build/examples/keysearch")
set_tests_properties(example_keysearch PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_office "/root/repo/build/examples/office")
set_tests_properties(example_office PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_replay_debugger "/root/repo/build/examples/replay_debugger")
set_tests_properties(example_replay_debugger PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;21;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_transactions "/root/repo/build/examples/transactions")
set_tests_properties(example_transactions PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;22;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_node_unit "/root/repo/build/examples/node_unit")
set_tests_properties(example_node_unit PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;23;add_test;/root/repo/examples/CMakeLists.txt;0;")
