file(REMOVE_RECURSE
  "CMakeFiles/office.dir/office.cpp.o"
  "CMakeFiles/office.dir/office.cpp.o.d"
  "office"
  "office.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/office.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
