# Empty dependencies file for node_unit.
# This may be replaced when dependencies are built.
