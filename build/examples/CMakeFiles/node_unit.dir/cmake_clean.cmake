file(REMOVE_RECURSE
  "CMakeFiles/node_unit.dir/node_unit.cpp.o"
  "CMakeFiles/node_unit.dir/node_unit.cpp.o.d"
  "node_unit"
  "node_unit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/node_unit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
