# Empty dependencies file for keysearch.
# This may be replaced when dependencies are built.
