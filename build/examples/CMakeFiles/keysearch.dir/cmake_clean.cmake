file(REMOVE_RECURSE
  "CMakeFiles/keysearch.dir/keysearch.cpp.o"
  "CMakeFiles/keysearch.dir/keysearch.cpp.o.d"
  "keysearch"
  "keysearch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/keysearch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
