file(REMOVE_RECURSE
  "CMakeFiles/replay_debugger.dir/replay_debugger.cpp.o"
  "CMakeFiles/replay_debugger.dir/replay_debugger.cpp.o.d"
  "replay_debugger"
  "replay_debugger.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_debugger.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
