# Empty compiler generated dependencies file for pub_tests.
# This may be replaced when dependencies are built.
