
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/chaos_test.cc" "tests/CMakeFiles/pub_tests.dir/chaos_test.cc.o" "gcc" "tests/CMakeFiles/pub_tests.dir/chaos_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/pub_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/pub_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/core_models_test.cc" "tests/CMakeFiles/pub_tests.dir/core_models_test.cc.o" "gcc" "tests/CMakeFiles/pub_tests.dir/core_models_test.cc.o.d"
  "/root/repo/tests/demos_kernel_test.cc" "tests/CMakeFiles/pub_tests.dir/demos_kernel_test.cc.o" "gcc" "tests/CMakeFiles/pub_tests.dir/demos_kernel_test.cc.o.d"
  "/root/repo/tests/fuzz_decode_test.cc" "tests/CMakeFiles/pub_tests.dir/fuzz_decode_test.cc.o" "gcc" "tests/CMakeFiles/pub_tests.dir/fuzz_decode_test.cc.o.d"
  "/root/repo/tests/multi_recorder_test.cc" "tests/CMakeFiles/pub_tests.dir/multi_recorder_test.cc.o" "gcc" "tests/CMakeFiles/pub_tests.dir/multi_recorder_test.cc.o.d"
  "/root/repo/tests/net_test.cc" "tests/CMakeFiles/pub_tests.dir/net_test.cc.o" "gcc" "tests/CMakeFiles/pub_tests.dir/net_test.cc.o.d"
  "/root/repo/tests/node_unit_test.cc" "tests/CMakeFiles/pub_tests.dir/node_unit_test.cc.o" "gcc" "tests/CMakeFiles/pub_tests.dir/node_unit_test.cc.o.d"
  "/root/repo/tests/partition_test.cc" "tests/CMakeFiles/pub_tests.dir/partition_test.cc.o" "gcc" "tests/CMakeFiles/pub_tests.dir/partition_test.cc.o.d"
  "/root/repo/tests/property_test.cc" "tests/CMakeFiles/pub_tests.dir/property_test.cc.o" "gcc" "tests/CMakeFiles/pub_tests.dir/property_test.cc.o.d"
  "/root/repo/tests/queueing_test.cc" "tests/CMakeFiles/pub_tests.dir/queueing_test.cc.o" "gcc" "tests/CMakeFiles/pub_tests.dir/queueing_test.cc.o.d"
  "/root/repo/tests/recorder_test.cc" "tests/CMakeFiles/pub_tests.dir/recorder_test.cc.o" "gcc" "tests/CMakeFiles/pub_tests.dir/recorder_test.cc.o.d"
  "/root/repo/tests/recovery_edge_test.cc" "tests/CMakeFiles/pub_tests.dir/recovery_edge_test.cc.o" "gcc" "tests/CMakeFiles/pub_tests.dir/recovery_edge_test.cc.o.d"
  "/root/repo/tests/recovery_integration_test.cc" "tests/CMakeFiles/pub_tests.dir/recovery_integration_test.cc.o" "gcc" "tests/CMakeFiles/pub_tests.dir/recovery_integration_test.cc.o.d"
  "/root/repo/tests/replay_debugger_test.cc" "tests/CMakeFiles/pub_tests.dir/replay_debugger_test.cc.o" "gcc" "tests/CMakeFiles/pub_tests.dir/replay_debugger_test.cc.o.d"
  "/root/repo/tests/selective_publishing_test.cc" "tests/CMakeFiles/pub_tests.dir/selective_publishing_test.cc.o" "gcc" "tests/CMakeFiles/pub_tests.dir/selective_publishing_test.cc.o.d"
  "/root/repo/tests/sim_test.cc" "tests/CMakeFiles/pub_tests.dir/sim_test.cc.o" "gcc" "tests/CMakeFiles/pub_tests.dir/sim_test.cc.o.d"
  "/root/repo/tests/stable_storage_test.cc" "tests/CMakeFiles/pub_tests.dir/stable_storage_test.cc.o" "gcc" "tests/CMakeFiles/pub_tests.dir/stable_storage_test.cc.o.d"
  "/root/repo/tests/transport_test.cc" "tests/CMakeFiles/pub_tests.dir/transport_test.cc.o" "gcc" "tests/CMakeFiles/pub_tests.dir/transport_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/pub_core.dir/DependInfo.cmake"
  "/root/repo/build/src/demos/CMakeFiles/pub_demos.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pub_net.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/pub_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/pub_common.dir/DependInfo.cmake"
  "/root/repo/build/src/queueing/CMakeFiles/pub_queueing.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
