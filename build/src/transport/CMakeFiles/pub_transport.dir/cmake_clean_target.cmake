file(REMOVE_RECURSE
  "libpub_transport.a"
)
