file(REMOVE_RECURSE
  "CMakeFiles/pub_transport.dir/endpoint.cc.o"
  "CMakeFiles/pub_transport.dir/endpoint.cc.o.d"
  "CMakeFiles/pub_transport.dir/packet.cc.o"
  "CMakeFiles/pub_transport.dir/packet.cc.o.d"
  "libpub_transport.a"
  "libpub_transport.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pub_transport.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
