# Empty compiler generated dependencies file for pub_transport.
# This may be replaced when dependencies are built.
