# Empty compiler generated dependencies file for pub_queueing.
# This may be replaced when dependencies are built.
