file(REMOVE_RECURSE
  "libpub_queueing.a"
)
