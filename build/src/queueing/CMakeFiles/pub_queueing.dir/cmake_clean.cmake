file(REMOVE_RECURSE
  "CMakeFiles/pub_queueing.dir/params.cc.o"
  "CMakeFiles/pub_queueing.dir/params.cc.o.d"
  "CMakeFiles/pub_queueing.dir/simulation.cc.o"
  "CMakeFiles/pub_queueing.dir/simulation.cc.o.d"
  "libpub_queueing.a"
  "libpub_queueing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pub_queueing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
