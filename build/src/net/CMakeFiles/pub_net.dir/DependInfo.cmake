
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/ethernet.cc" "src/net/CMakeFiles/pub_net.dir/ethernet.cc.o" "gcc" "src/net/CMakeFiles/pub_net.dir/ethernet.cc.o.d"
  "/root/repo/src/net/frame.cc" "src/net/CMakeFiles/pub_net.dir/frame.cc.o" "gcc" "src/net/CMakeFiles/pub_net.dir/frame.cc.o.d"
  "/root/repo/src/net/link_layer.cc" "src/net/CMakeFiles/pub_net.dir/link_layer.cc.o" "gcc" "src/net/CMakeFiles/pub_net.dir/link_layer.cc.o.d"
  "/root/repo/src/net/star_hub.cc" "src/net/CMakeFiles/pub_net.dir/star_hub.cc.o" "gcc" "src/net/CMakeFiles/pub_net.dir/star_hub.cc.o.d"
  "/root/repo/src/net/token_ring.cc" "src/net/CMakeFiles/pub_net.dir/token_ring.cc.o" "gcc" "src/net/CMakeFiles/pub_net.dir/token_ring.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pub_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
