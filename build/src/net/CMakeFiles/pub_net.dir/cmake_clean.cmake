file(REMOVE_RECURSE
  "CMakeFiles/pub_net.dir/ethernet.cc.o"
  "CMakeFiles/pub_net.dir/ethernet.cc.o.d"
  "CMakeFiles/pub_net.dir/frame.cc.o"
  "CMakeFiles/pub_net.dir/frame.cc.o.d"
  "CMakeFiles/pub_net.dir/link_layer.cc.o"
  "CMakeFiles/pub_net.dir/link_layer.cc.o.d"
  "CMakeFiles/pub_net.dir/star_hub.cc.o"
  "CMakeFiles/pub_net.dir/star_hub.cc.o.d"
  "CMakeFiles/pub_net.dir/token_ring.cc.o"
  "CMakeFiles/pub_net.dir/token_ring.cc.o.d"
  "libpub_net.a"
  "libpub_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pub_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
