# Empty dependencies file for pub_net.
# This may be replaced when dependencies are built.
