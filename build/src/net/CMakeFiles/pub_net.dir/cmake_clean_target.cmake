file(REMOVE_RECURSE
  "libpub_net.a"
)
