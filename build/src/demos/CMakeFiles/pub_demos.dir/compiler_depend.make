# Empty compiler generated dependencies file for pub_demos.
# This may be replaced when dependencies are built.
