file(REMOVE_RECURSE
  "CMakeFiles/pub_demos.dir/cluster.cc.o"
  "CMakeFiles/pub_demos.dir/cluster.cc.o.d"
  "CMakeFiles/pub_demos.dir/link.cc.o"
  "CMakeFiles/pub_demos.dir/link.cc.o.d"
  "CMakeFiles/pub_demos.dir/node_image.cc.o"
  "CMakeFiles/pub_demos.dir/node_image.cc.o.d"
  "CMakeFiles/pub_demos.dir/node_kernel.cc.o"
  "CMakeFiles/pub_demos.dir/node_kernel.cc.o.d"
  "CMakeFiles/pub_demos.dir/process_image.cc.o"
  "CMakeFiles/pub_demos.dir/process_image.cc.o.d"
  "CMakeFiles/pub_demos.dir/protocol.cc.o"
  "CMakeFiles/pub_demos.dir/protocol.cc.o.d"
  "CMakeFiles/pub_demos.dir/system_programs.cc.o"
  "CMakeFiles/pub_demos.dir/system_programs.cc.o.d"
  "libpub_demos.a"
  "libpub_demos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pub_demos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
