file(REMOVE_RECURSE
  "libpub_demos.a"
)
