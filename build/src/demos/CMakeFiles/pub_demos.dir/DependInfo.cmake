
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/demos/cluster.cc" "src/demos/CMakeFiles/pub_demos.dir/cluster.cc.o" "gcc" "src/demos/CMakeFiles/pub_demos.dir/cluster.cc.o.d"
  "/root/repo/src/demos/link.cc" "src/demos/CMakeFiles/pub_demos.dir/link.cc.o" "gcc" "src/demos/CMakeFiles/pub_demos.dir/link.cc.o.d"
  "/root/repo/src/demos/node_image.cc" "src/demos/CMakeFiles/pub_demos.dir/node_image.cc.o" "gcc" "src/demos/CMakeFiles/pub_demos.dir/node_image.cc.o.d"
  "/root/repo/src/demos/node_kernel.cc" "src/demos/CMakeFiles/pub_demos.dir/node_kernel.cc.o" "gcc" "src/demos/CMakeFiles/pub_demos.dir/node_kernel.cc.o.d"
  "/root/repo/src/demos/process_image.cc" "src/demos/CMakeFiles/pub_demos.dir/process_image.cc.o" "gcc" "src/demos/CMakeFiles/pub_demos.dir/process_image.cc.o.d"
  "/root/repo/src/demos/protocol.cc" "src/demos/CMakeFiles/pub_demos.dir/protocol.cc.o" "gcc" "src/demos/CMakeFiles/pub_demos.dir/protocol.cc.o.d"
  "/root/repo/src/demos/system_programs.cc" "src/demos/CMakeFiles/pub_demos.dir/system_programs.cc.o" "gcc" "src/demos/CMakeFiles/pub_demos.dir/system_programs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pub_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pub_net.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/pub_transport.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
