# CMake generated Testfile for 
# Source directory: /root/repo/src/demos
# Build directory: /root/repo/build/src/demos
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
