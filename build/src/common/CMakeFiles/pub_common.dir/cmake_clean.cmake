file(REMOVE_RECURSE
  "CMakeFiles/pub_common.dir/checksum.cc.o"
  "CMakeFiles/pub_common.dir/checksum.cc.o.d"
  "CMakeFiles/pub_common.dir/ids.cc.o"
  "CMakeFiles/pub_common.dir/ids.cc.o.d"
  "CMakeFiles/pub_common.dir/logging.cc.o"
  "CMakeFiles/pub_common.dir/logging.cc.o.d"
  "CMakeFiles/pub_common.dir/status.cc.o"
  "CMakeFiles/pub_common.dir/status.cc.o.d"
  "libpub_common.a"
  "libpub_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pub_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
