file(REMOVE_RECURSE
  "libpub_common.a"
)
