# Empty dependencies file for pub_common.
# This may be replaced when dependencies are built.
