# Empty compiler generated dependencies file for pub_core.
# This may be replaced when dependencies are built.
