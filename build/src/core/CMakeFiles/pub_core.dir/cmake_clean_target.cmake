file(REMOVE_RECURSE
  "libpub_core.a"
)
