file(REMOVE_RECURSE
  "CMakeFiles/pub_core.dir/checkpoint_policy.cc.o"
  "CMakeFiles/pub_core.dir/checkpoint_policy.cc.o.d"
  "CMakeFiles/pub_core.dir/publishing_system.cc.o"
  "CMakeFiles/pub_core.dir/publishing_system.cc.o.d"
  "CMakeFiles/pub_core.dir/recorder.cc.o"
  "CMakeFiles/pub_core.dir/recorder.cc.o.d"
  "CMakeFiles/pub_core.dir/recorder_group.cc.o"
  "CMakeFiles/pub_core.dir/recorder_group.cc.o.d"
  "CMakeFiles/pub_core.dir/recovery_manager.cc.o"
  "CMakeFiles/pub_core.dir/recovery_manager.cc.o.d"
  "CMakeFiles/pub_core.dir/replay_debugger.cc.o"
  "CMakeFiles/pub_core.dir/replay_debugger.cc.o.d"
  "CMakeFiles/pub_core.dir/stable_storage.cc.o"
  "CMakeFiles/pub_core.dir/stable_storage.cc.o.d"
  "libpub_core.a"
  "libpub_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pub_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
