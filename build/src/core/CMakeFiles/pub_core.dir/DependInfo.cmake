
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/checkpoint_policy.cc" "src/core/CMakeFiles/pub_core.dir/checkpoint_policy.cc.o" "gcc" "src/core/CMakeFiles/pub_core.dir/checkpoint_policy.cc.o.d"
  "/root/repo/src/core/publishing_system.cc" "src/core/CMakeFiles/pub_core.dir/publishing_system.cc.o" "gcc" "src/core/CMakeFiles/pub_core.dir/publishing_system.cc.o.d"
  "/root/repo/src/core/recorder.cc" "src/core/CMakeFiles/pub_core.dir/recorder.cc.o" "gcc" "src/core/CMakeFiles/pub_core.dir/recorder.cc.o.d"
  "/root/repo/src/core/recorder_group.cc" "src/core/CMakeFiles/pub_core.dir/recorder_group.cc.o" "gcc" "src/core/CMakeFiles/pub_core.dir/recorder_group.cc.o.d"
  "/root/repo/src/core/recovery_manager.cc" "src/core/CMakeFiles/pub_core.dir/recovery_manager.cc.o" "gcc" "src/core/CMakeFiles/pub_core.dir/recovery_manager.cc.o.d"
  "/root/repo/src/core/replay_debugger.cc" "src/core/CMakeFiles/pub_core.dir/replay_debugger.cc.o" "gcc" "src/core/CMakeFiles/pub_core.dir/replay_debugger.cc.o.d"
  "/root/repo/src/core/stable_storage.cc" "src/core/CMakeFiles/pub_core.dir/stable_storage.cc.o" "gcc" "src/core/CMakeFiles/pub_core.dir/stable_storage.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/pub_common.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/pub_net.dir/DependInfo.cmake"
  "/root/repo/build/src/transport/CMakeFiles/pub_transport.dir/DependInfo.cmake"
  "/root/repo/build/src/demos/CMakeFiles/pub_demos.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
